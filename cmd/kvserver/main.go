// Command kvserver runs one partition server (or one DC stabilizer) of the
// causally consistent store over real TCP, making the same protocol code
// the benchmarks measure deployable across processes and machines.
//
// A deployment is described by a topology file, one line per process:
//
//	# dc  partition|stab  host:port
//	0 0    127.0.0.1:7000
//	0 1    127.0.0.1:7001
//	0 stab 127.0.0.1:7099
//
// Start one kvserver per line:
//
//	kvserver -topology topo.txt -protocol contrarian -dc 0 -partition 0
//	kvserver -topology topo.txt -protocol contrarian -dc 0 -partition 1
//	kvserver -topology topo.txt -protocol contrarian -dc 0 -stabilizer
//
// then interact with cmd/kvctl.
//
// With -data-dir the partition becomes durable: every acknowledged install
// is group-committed to a segmented write-ahead log under that directory
// before the client sees the ack, and a restarted server (even after kill
// -9) recovers it — including tolerating the torn final record a crash
// mid-commit can leave.
//
// With -obs-addr the process serves its observability surface on a separate
// HTTP listener: /metrics (Prometheus text format), /statusz (JSON
// identity+uptime), /debug/pprof (standard profiles), and /debug/slowops
// (the ring of handler executions slower than -slow-op).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cclo"
	"repro/internal/cluster"
	"repro/internal/cops"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	var (
		topoPath   = flag.String("topology", "", "topology file (required)")
		protocol   = flag.String("protocol", "contrarian", "contrarian|cure|cclo|cops")
		dc         = flag.Int("dc", 0, "this server's data center")
		partition  = flag.Int("partition", 0, "this server's partition index")
		stabilizer = flag.Bool("stabilizer", false, "run the DC's stabilization service instead of a partition")
		dataDir    = flag.String("data-dir", "", "durability root: group-commit every install to a WAL under this directory and recover it on restart (partitions only; empty = in-memory)")
		snapEvery  = flag.Duration("wal-snapshot-every", time.Minute, "periodic WAL snapshot+truncate interval (with -data-dir; 0 disables)")
		segBytes   = flag.Int64("wal-segment-bytes", 0, "WAL segment size before rotation (0 = default 64 MiB)")
		walSync    = flag.String("wal-sync", "sync", "WAL acknowledgment contract: sync (acked ⇒ fsynced) or async (acked ⇒ written; fsync within -wal-fsync-every)")
		fsyncEvery = flag.Duration("wal-fsync-every", 0, "async mode's bounded loss window (0 = default 2ms)")
		repFlush   = flag.Duration("rep-flush-every", 0, "replication flush period for the timestamp-based engine (0 = default 2ms; tests stretch it to hold replication back)")
		gcWindow   = flag.Duration("reader-gc-window", 0, "CC-LO reader GC window: how long reader records, old-reader entries, and invisibility marks live (0 = default 500ms; crash tests stretch it)")
		flushBud   = flag.Duration("flush-budget", transport.DefaultFlushBudget, "adaptive flush latency budget: how long the transport may keep a coalesced batch open before flushing (0 = greedy drain-until-idle)")
		writevMin  = flag.Int("writev-bytes", 0, "frame size at or above which frames skip the copy into the flush buffer and go out via writev scatter-gather (0 = default 16 KiB)")
		shards     = flag.Int("store-shards", 0, "storage engine shard count — the write-concurrency grain; reads are lock-free regardless (0 = auto-size from GOMAXPROCS; rounded up to a power of two)")
		obsAddr    = flag.String("obs-addr", "", "observability HTTP listener: /metrics (Prometheus text), /statusz, /debug/pprof, /debug/slowops (empty = disabled)")
		slowOp     = flag.Duration("slow-op", 25*time.Millisecond, "slow-op trace threshold: handler executions at or above it are kept in the /debug/slowops ring")
		admitLimit = flag.Int("admit-limit", 0, "client admission cap: max concurrently running client handlers; excess client requests are shed with a typed busy+retry-after response (0 = unbounded; cluster traffic is never gated)")
		shedQueue  = flag.Int64("shed-queue-frames", 0, "shed client load early once the transport send queue reaches this many frames (0 = signal unused)")
		shedFsync  = flag.Duration("shed-fsync-p99", 0, "shed client load early once the WAL p99 fsync delay reaches this (0 = signal unused)")
	)
	flag.Parse()
	if *topoPath == "" {
		log.Fatal("kvserver: -topology is required")
	}
	if *shards < 0 || *shards > store.MaxShards {
		log.Fatalf("kvserver: -store-shards %d out of range [0, %d]", *shards, store.MaxShards)
	}
	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := cluster.ParseTopology(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *dc < 0 || *dc >= topo.DCs {
		log.Fatalf("kvserver: -dc %d outside topology (have %d DCs)", *dc, topo.DCs)
	}
	if !*stabilizer && (*partition < 0 || *partition >= topo.Partitions) {
		log.Fatalf("kvserver: -partition %d outside topology (have %d partitions)", *partition, topo.Partitions)
	}

	// The flag spells greedy as 0; the engine policy does too, so it is
	// passed through as-is (unlike struct configs, an explicit flag default
	// carries the adaptive budget itself).
	net := transport.NewTCPOpts(topo.Directory, transport.BatchPolicy{
		FlushBudget: *flushBud,
		WritevBytes: *writevMin,
	})
	defer net.Close()

	// Observability: one registry + slow-op ring per process, served from a
	// dedicated listener so scrapes never contend with protocol traffic.
	started := time.Now()
	var (
		reg  *metrics.Registry
		ring *metrics.SlowRing
	)
	if *obsAddr != "" {
		reg = metrics.NewRegistry()
		ring = metrics.NewSlowRing(1024, *slowOp)
		net.Stats().Register(reg)
	}

	// Durability: one WAL per partition process. Opened before the server
	// so construction replays the recovered state, closed after it so the
	// final appends are flushed on graceful shutdown.
	var durable wal.Durability
	var walLog *wal.Log
	if *dataDir != "" && !*stabilizer {
		mode, err := wal.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		l, err := wal.Open(wal.Options{
			Dir:           filepath.Join(*dataDir, fmt.Sprintf("dc%d-p%d", *dc, *partition)),
			SegmentBytes:  *segBytes,
			SnapshotEvery: *snapEvery,
			Sync:          mode,
			FsyncEvery:    *fsyncEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		walLog, durable = l, l
	}

	// Admission control must be configured before the server attaches: the
	// gate is created at Attach time. The overload detector probes this
	// process's send queue and (when durable) its WAL fsync latency.
	if *admitLimit > 0 && !*stabilizer {
		fsyncP99 := func() time.Duration { return 0 }
		if walLog != nil {
			fsyncP99 = func() time.Duration { return walLog.Stats().FsyncDelay.Percentile(99) }
		}
		net.SetAdmission(transport.AdmitConfig{
			Limit:           *admitLimit,
			ShedQueueFrames: *shedQueue,
			ShedFsyncP99:    *shedFsync,
			QueueDepth:      net.Stats().SendQueue.Load,
			FsyncP99:        fsyncP99,
		})
	}

	// Per-process metric labels: the family plus this server's coordinates.
	labels := []metrics.Label{
		{Name: "family", Value: *protocol},
		{Name: "dc", Value: strconv.Itoa(*dc)},
		{Name: "partition", Value: strconv.Itoa(*partition)},
	}

	var closer interface{ Close() error }
	switch {
	case *stabilizer:
		st, err := core.NewStabilizer(*dc, topo.Partitions, topo.DCs, 0, net)
		if err != nil {
			log.Fatal(err)
		}
		st.Start()
		closer = st
		log.Printf("stabilizer for dc%d up (%d partitions, %d DCs)", *dc, topo.Partitions, topo.DCs)
	case *protocol == "cops":
		s, err := cops.NewServer(cops.Config{
			DC: *dc, Part: *partition, NumDCs: topo.DCs, NumParts: topo.Partitions,
			StoreShards: *shards,
			Durable:     durable,
			Slow:        ring,
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		if reg != nil {
			s.RegisterMetrics(reg, labels...)
		}
		s.Start()
		closer = s
		log.Printf("cops partition dc%d/p%d up", *dc, *partition)
	case *protocol == "cclo":
		s, err := cclo.NewServer(cclo.Config{
			DC: *dc, Part: *partition, NumDCs: topo.DCs, NumParts: topo.Partitions,
			GCWindow:    *gcWindow,
			StoreShards: *shards,
			Durable:     durable,
			Slow:        ring,
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		if reg != nil {
			s.RegisterMetrics(reg, labels...)
		}
		s.Start()
		closer = s
		log.Printf("cclo partition dc%d/p%d up", *dc, *partition)
	case *protocol == "contrarian" || *protocol == "cure":
		clock := core.ClockHLC
		if *protocol == "cure" {
			clock = core.ClockPhysical
		}
		s, err := core.NewServer(core.Config{
			DC: *dc, Part: *partition, NumDCs: topo.DCs, NumParts: topo.Partitions,
			Clock:         clock,
			RepFlushEvery: *repFlush,
			StoreShards:   *shards,
			Durable:       durable,
			Slow:          ring,
		}, net)
		if err != nil {
			log.Fatal(err)
		}
		if reg != nil {
			s.RegisterMetrics(reg, labels...)
		}
		s.Start()
		closer = s
		log.Printf("%s partition dc%d/p%d up", *protocol, *dc, *partition)
	default:
		log.Fatalf("kvserver: unknown protocol %q", *protocol)
	}

	if reg != nil && walLog != nil {
		walLog.Stats().Register(reg, labels...)
	}
	if reg != nil && *admitLimit > 0 && !*stabilizer {
		net.AdmitStats().Register(reg, labels...)
	}
	if *obsAddr != "" {
		srv := obs.New(obs.Config{
			Registry: reg,
			Slow:     ring,
			Status: func() obs.Status {
				extra := map[string]string{"topology": *topoPath, "wal": "off"}
				if walLog != nil {
					extra["wal"] = *walSync
					extra["epoch"] = strconv.FormatUint(walLog.Epoch(), 10)
				}
				if *stabilizer {
					extra["role"] = "stabilizer"
				}
				tv := net.Stats().View()
				extra["open_conns"] = strconv.FormatInt(tv.OpenConns, 10)
				extra["sessions"] = strconv.FormatInt(tv.Sessions, 10)
				overload := ""
				if *admitLimit > 0 && !*stabilizer {
					v := net.AdmitStats().View()
					if v.Overloaded || v.Depth >= int64(*admitLimit) {
						overload = "shedding"
					} else {
						overload = "admitting"
					}
				}
				return obs.Status{
					Overload:  overload,
					Protocol:  *protocol,
					DC:        *dc,
					Partition: *partition,
					NumDCs:    topo.DCs,
					NumParts:  topo.Partitions,
					StartedAt: started,
					Extra:     extra,
				}
			},
		})
		if err := srv.Listen(*obsAddr); err != nil {
			log.Fatalf("kvserver: obs listener: %v", err)
		}
		defer srv.Close()
		log.Printf("observability surface on http://%s (/metrics /statusz /debug/pprof /debug/slowops)", srv.Addr())
	}

	if walLog != nil {
		v := walLog.Stats().View()
		log.Printf("wal: recovered %d records in %v (%d torn tail(s) tolerated)",
			v.RecoveredRecords, time.Duration(v.RecoveryNanos).Round(time.Microsecond), v.TornTails)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down")
	closer.Close()
	if walLog != nil {
		// After the server: its in-flight appends have drained, so this
		// flush makes the shutdown clean (recovery then sees no torn tail).
		walLog.Close()
	}
}
