// Command kvctl is a client CLI for a kvserver deployment.
//
//	kvctl -topology topo.txt put mykey myvalue
//	kvctl -topology topo.txt get mykey
//	kvctl -topology topo.txt rot key1 key2 key3
//	kvctl -topology topo.txt bench -n 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/cclo"
	"repro/internal/cluster"
	"repro/internal/cops"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/transport"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology file (required)")
		protocol = flag.String("protocol", "contrarian", "contrarian|cure|cclo|cops")
		dc       = flag.Int("dc", 0, "home data center")
		timeout  = flag.Duration("timeout", 5*time.Second, "operation timeout")
		seed     = flag.Int64("seed", 0, "RNG seed for client id and bench key picks; 0 draws a time-based seed, any other value makes runs reproducible")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	// A locally constructed generator instead of the deprecated global
	// rand.Seed path: reproducible whenever -seed is given.
	rng := rand.New(rand.NewSource(*seed))
	args := flag.Args()
	if *topoPath == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kvctl -topology FILE [-protocol P] [-dc N] put|get|rot|bench ...")
		os.Exit(2)
	}
	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := cluster.ParseTopology(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *dc < 0 || *dc >= topo.DCs {
		log.Fatalf("kvctl: -dc %d outside topology (have %d DCs)", *dc, topo.DCs)
	}

	net := transport.NewTCP(topo.Directory)
	defer net.Close()
	cli, err := newClient(*protocol, *dc, topo, net, rng)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Pre-connect to every partition so servers can answer this client
	// directly (the partition-to-client leg of 1 1/2-round ROTs).
	if err := warm(ctx, cli, topo.Partitions); err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put KEY VALUE")
		}
		ts, err := cli.Put(ctx, args[1], []byte(args[2]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("OK ts=%d\n", ts)
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get KEY")
		}
		v, err := cli.Get(ctx, args[1])
		if err != nil {
			log.Fatal(err)
		}
		if v == nil {
			fmt.Println("(nil)")
		} else {
			fmt.Printf("%s\n", v)
		}
	case "rot":
		if len(args) < 2 {
			log.Fatal("usage: rot KEY...")
		}
		kvs, err := cli.ROT(ctx, args[1:])
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range kvs {
			if kv.Value == nil {
				fmt.Printf("%s = (nil)\n", kv.Key)
			} else {
				fmt.Printf("%s = %s (ts %d)\n", kv.Key, kv.Value, kv.TS)
			}
		}
	case "bench":
		n := 1000
		if len(args) == 2 {
			fmt.Sscanf(args[1], "%d", &n)
		}
		benchLoop(cli, n, rng)
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// warmer is implemented by both protocol clients.
type warmer interface {
	Warm(ctx context.Context) error
}

func warm(ctx context.Context, cli cluster.Client, parts int) error {
	if w, ok := cli.(warmer); ok {
		return w.Warm(ctx)
	}
	return nil
}

func newClient(protocol string, dc int, topo *cluster.Topology, net transport.Network, rng *rand.Rand) (cluster.Client, error) {
	id := int(rng.Int31n(30000)) + 1000
	r := ring.New(topo.Partitions)
	if protocol == "cclo" {
		return cclo.NewClient(cclo.ClientConfig{DC: dc, ID: id, Ring: r}, net)
	}
	if protocol == "cops" {
		return cops.NewClient(cops.ClientConfig{DC: dc, ID: id, Ring: r}, net)
	}
	mode := core.OneAndHalfRounds
	if protocol == "cure" {
		mode = core.TwoRounds
	}
	return core.NewClient(core.ClientConfig{
		DC: dc, ID: id, NumDCs: topo.DCs, Ring: r, Mode: mode,
	}, net)
}

func benchLoop(cli cluster.Client, n int, rng *rand.Rand) {
	ctx := context.Background()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%02d", i)
		if _, err := cli.Put(ctx, keys[i], []byte("seed")); err != nil {
			log.Fatal(err)
		}
	}
	var rotTot, putTot time.Duration
	var rots, puts int
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if i%5 == 0 {
			if _, err := cli.Put(ctx, keys[rng.Intn(len(keys))], []byte("v")); err != nil {
				log.Fatal(err)
			}
			putTot += time.Since(t0)
			puts++
		} else {
			ks := []string{keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]}
			if _, err := cli.ROT(ctx, ks); err != nil {
				log.Fatal(err)
			}
			rotTot += time.Since(t0)
			rots++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d ops in %v (%.0f op/s); avg rot %v, avg put %v\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		rotTot/time.Duration(max(rots, 1)), putTot/time.Duration(max(puts, 1)))
}
