// Command kvctl is a client CLI for a kvserver deployment.
//
//	kvctl -topology topo.txt put mykey myvalue
//	kvctl -topology topo.txt get mykey
//	kvctl -topology topo.txt rot key1 key2 key3
//	kvctl -topology topo.txt bench -n 1000
//
// With -sessions-per-conn the bench command drives many logical client
// sessions multiplexed over one endpoint's small socket pool instead of
// one TCP client per session:
//
//	kvctl -topology topo.txt -tenants 4 -sessions-per-conn 250 -socket-pool 8 bench 20000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cclo"
	"repro/internal/cluster"
	"repro/internal/cops"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	var (
		topoPath = flag.String("topology", "", "topology file (required)")
		protocol = flag.String("protocol", "contrarian", "contrarian|cure|cclo|cops")
		dc       = flag.Int("dc", 0, "home data center")
		timeout  = flag.Duration("timeout", 5*time.Second, "operation timeout")
		seed     = flag.Int64("seed", 0, "RNG seed for client id and bench key picks; 0 draws a time-based seed, any other value makes runs reproducible")
		tenants  = flag.Int("tenants", 1, "bench: spread sessions round-robin over this many admission tenants")
		sessions = flag.Int("sessions-per-conn", 0, "bench: run this many logical sessions per tenant, all multiplexed over one endpoint's socket pool (0 = one plain client)")
		sockPool = flag.Int("socket-pool", 4, "bench: connections per server the multiplexed endpoint may open")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	// A locally constructed generator instead of the deprecated global
	// rand.Seed path: reproducible whenever -seed is given.
	rng := rand.New(rand.NewSource(*seed))
	args := flag.Args()
	if *topoPath == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kvctl -topology FILE [-protocol P] [-dc N] put|get|rot|bench ...")
		os.Exit(2)
	}
	f, err := os.Open(*topoPath)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := cluster.ParseTopology(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if *dc < 0 || *dc >= topo.DCs {
		log.Fatalf("kvctl: -dc %d outside topology (have %d DCs)", *dc, topo.DCs)
	}

	net := transport.NewTCP(topo.Directory)
	defer net.Close()
	cli, err := newClient(*protocol, *dc, topo, net, rng)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Pre-connect to every partition so servers can answer this client
	// directly (the partition-to-client leg of 1 1/2-round ROTs).
	if err := warm(ctx, cli, topo.Partitions); err != nil {
		log.Fatal(err)
	}

	switch args[0] {
	case "put":
		if len(args) != 3 {
			log.Fatal("usage: put KEY VALUE")
		}
		ts, err := cli.Put(ctx, args[1], []byte(args[2]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("OK ts=%d\n", ts)
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: get KEY")
		}
		v, err := cli.Get(ctx, args[1])
		if err != nil {
			log.Fatal(err)
		}
		if v == nil {
			fmt.Println("(nil)")
		} else {
			fmt.Printf("%s\n", v)
		}
	case "rot":
		if len(args) < 2 {
			log.Fatal("usage: rot KEY...")
		}
		kvs, err := cli.ROT(ctx, args[1:])
		if err != nil {
			log.Fatal(err)
		}
		for _, kv := range kvs {
			if kv.Value == nil {
				fmt.Printf("%s = (nil)\n", kv.Key)
			} else {
				fmt.Printf("%s = %s (ts %d)\n", kv.Key, kv.Value, kv.TS)
			}
		}
	case "putchain":
		// One session, sequential puts: each put causally depends on the one
		// before it (the CC-LO/COPS dependency chain the crash smokes need —
		// separate kvctl invocations are separate sessions with no deps).
		if len(args) < 2 {
			log.Fatal("usage: putchain KEY=VALUE...")
		}
		for _, pair := range args[1:] {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("putchain: %q is not KEY=VALUE", pair)
			}
			ts, err := cli.Put(ctx, k, []byte(v))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("OK %s ts=%d\n", k, ts)
		}
	case "straddle":
		// A multi-partition CC-LO ROT played one leg at a time with a pause
		// between the legs, so a test harness can kill -9 and restart a
		// partition mid-ROT. Prints each leg's value and epoch vector plus
		// whether the client fence would retry the ROT.
		if *protocol != "cclo" {
			log.Fatal("straddle is a CC-LO command (-protocol cclo)")
		}
		if len(args) != 4 {
			log.Fatal("usage: straddle GAP KEY1 KEY2")
		}
		gap, err := time.ParseDuration(args[1])
		if err != nil {
			log.Fatal(err)
		}
		straddle(net, *dc, topo.Partitions, int(rng.Int31n(20000))+40000, gap, args[2], args[3])
	case "bench":
		n := 1000
		if len(args) == 2 {
			fmt.Sscanf(args[1], "%d", &n)
		}
		if *sessions > 0 {
			benchSessions(net, *protocol, *dc, topo, n, *tenants, *sessions, *sockPool, rng)
		} else {
			benchLoop(cli, n, rng)
		}
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

// straddle hand-plays one CC-LO ROT: leg 1 to KEY1's partition, a sleep of
// gap (the harness's window to kill/restart a partition), then leg 2 to
// KEY2's partition under the same rot id, retried until the partition is
// back. Output is grep-friendly for CI smokes.
func straddle(net transport.Network, dc, parts, id int, gap time.Duration, k1, k2 string) {
	r := ring.New(parts)
	p1, p2 := r.Owner(k1), r.Owner(k2)
	if p1 == p2 {
		log.Fatalf("straddle: %q and %q are both on partition %d; pick keys on distinct partitions", k1, k2, p1)
	}
	node, err := net.Attach(wire.ClientAddr(dc, id), transport.HandlerFunc(
		func(transport.Node, wire.From, uint64, wire.Message) {}))
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	rotID := uint64(node.Addr())<<32 | 1

	leg := func(name string, part int, key string) *wire.LoRotResp {
		deadline := time.Now().Add(60 * time.Second)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			resp, err := node.Call(ctx, wire.ServerAddr(dc, part), &wire.LoRotReq{RotID: rotID, Keys: []string{key}})
			cancel()
			if err == nil {
				rr, ok := resp.(*wire.LoRotResp)
				if !ok {
					log.Fatalf("straddle %s: unexpected response %T", name, resp)
				}
				return rr
			}
			if time.Now().After(deadline) {
				log.Fatalf("straddle %s: partition %d never answered: %v", name, part, err)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	show := func(v []byte) string {
		if v == nil {
			return "(nil)"
		}
		return string(v)
	}
	leg1 := leg("leg1", p1, k1)
	fmt.Printf("leg1 %s=%s epochs=%v\n", k1, show(leg1.Vals[0].Value), leg1.Epochs)
	time.Sleep(gap)
	leg2 := leg("leg2", p2, k2)
	fmt.Printf("leg2 %s=%s epochs=%v\n", k2, show(leg2.Vals[0].Value), leg2.Epochs)
	fenced := false
	if p1 < len(leg1.Epochs) && p1 < len(leg2.Epochs) && leg2.Epochs[p1] > leg1.Epochs[p1] {
		fenced = true
	}
	if p2 < len(leg1.Epochs) && p2 < len(leg2.Epochs) && leg1.Epochs[p2] > leg2.Epochs[p2] {
		fenced = true
	}
	fmt.Printf("fenced=%v\n", fenced)
}

// warmer is implemented by both protocol clients.
type warmer interface {
	Warm(ctx context.Context) error
}

func warm(ctx context.Context, cli cluster.Client, parts int) error {
	if w, ok := cli.(warmer); ok {
		return w.Warm(ctx)
	}
	return nil
}

func newClient(protocol string, dc int, topo *cluster.Topology, net transport.Network, rng *rand.Rand) (cluster.Client, error) {
	id := int(rng.Int31n(30000)) + 1000
	r := ring.New(topo.Partitions)
	if protocol == "cclo" {
		return cclo.NewClient(cclo.ClientConfig{DC: dc, ID: id, Ring: r}, net)
	}
	if protocol == "cops" {
		return cops.NewClient(cops.ClientConfig{DC: dc, ID: id, Ring: r}, net)
	}
	mode := core.OneAndHalfRounds
	if protocol == "cure" {
		mode = core.TwoRounds
	}
	return core.NewClient(core.ClientConfig{
		DC: dc, ID: id, NumDCs: topo.DCs, Ring: r, Mode: mode,
	}, net)
}

// benchSessions is the connection-scale bench: tenants x perConn logical
// sessions share one multiplexed endpoint whose socket pool is capped at
// pool connections per server, and hammer the cluster concurrently. The
// summary line reports aggregate goodput plus the endpoint's socket
// high-water mark — the number the connection-scale smoke bounds.
func benchSessions(net *transport.TCP, protocol string, dc int, topo *cluster.Topology, n, tenants, perConn, pool int, rng *rand.Rand) {
	if tenants < 1 {
		tenants = 1
	}
	r := ring.New(topo.Partitions)
	baseID := int(rng.Int31n(20000)) + 1000
	mux, err := net.AttachMux(wire.ClientAddr(dc, baseID), pool)
	if err != nil {
		log.Fatal(err)
	}
	defer mux.Close()

	total := tenants * perConn
	clis := make([]cluster.Client, total)
	for i := range clis {
		id := baseID + 1 + i
		sess := wire.MakeSession(uint16(i%tenants), uint16(id))
		cli, err := newSessionClient(protocol, dc, id, topo, r, mux, sess)
		if err != nil {
			log.Fatalf("session %d: %v", i, err)
		}
		clis[i] = cli
	}
	defer func() {
		for _, cli := range clis {
			cli.Close()
		}
	}()

	ctx := context.Background()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%02d", i)
		if _, err := clis[0].Put(ctx, keys[i], []byte("seed")); err != nil {
			log.Fatal(err)
		}
	}

	perSession := max(n/total, 1)
	var ops, fails atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for i, cli := range clis {
		wg.Add(1)
		go func(i int, cli cluster.Client) {
			defer wg.Done()
			// Per-session generator: the shared one is not goroutine-safe.
			rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
			if err := warm(ctx, cli, topo.Partitions); err != nil {
				fails.Add(int64(perSession))
				return
			}
			for j := 0; j < perSession; j++ {
				var err error
				if j%5 == 0 {
					_, err = cli.Put(ctx, keys[rng.Intn(len(keys))], []byte("v"))
				} else {
					_, err = cli.ROT(ctx, []string{keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]})
				}
				if err != nil {
					fails.Add(1)
					continue
				}
				ops.Add(1)
			}
		}(i, cli)
	}
	wg.Wait()
	elapsed := time.Since(start)
	v := net.Stats().View()
	fmt.Printf("%d sessions (%d tenants) over <=%d sockets/server: %d ops in %v (%.0f op/s), %d failed; sockets peak=%d sessions peak=%d\n",
		total, tenants, pool, ops.Load(), elapsed.Round(time.Millisecond),
		float64(ops.Load())/elapsed.Seconds(), fails.Load(), v.OpenConnsPeak, v.SessionsPeak)
}

// newSessionClient builds the protocol client for one logical session on
// mux. id must stay unique per DC across the process's sessions (CC-LO rot
// identity).
func newSessionClient(protocol string, dc, id int, topo *cluster.Topology, r ring.Ring, mux transport.Mux, sess wire.SessionID) (cluster.Client, error) {
	if protocol == "cclo" {
		return cclo.NewSessionClient(cclo.ClientConfig{DC: dc, ID: id, Ring: r}, mux, sess)
	}
	if protocol == "cops" {
		return cops.NewSessionClient(cops.ClientConfig{DC: dc, ID: id, Ring: r}, mux, sess)
	}
	mode := core.OneAndHalfRounds
	if protocol == "cure" {
		mode = core.TwoRounds
	}
	return core.NewSessionClient(core.ClientConfig{
		DC: dc, ID: id, NumDCs: topo.DCs, Ring: r, Mode: mode,
	}, mux, sess)
}

func benchLoop(cli cluster.Client, n int, rng *rand.Rand) {
	ctx := context.Background()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%02d", i)
		if _, err := cli.Put(ctx, keys[i], []byte("seed")); err != nil {
			log.Fatal(err)
		}
	}
	var rotTot, putTot time.Duration
	var rots, puts int
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if i%5 == 0 {
			if _, err := cli.Put(ctx, keys[rng.Intn(len(keys))], []byte("v")); err != nil {
				log.Fatal(err)
			}
			putTot += time.Since(t0)
			puts++
		} else {
			ks := []string{keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]}
			if _, err := cli.ROT(ctx, ks); err != nil {
				log.Fatal(err)
			}
			rotTot += time.Since(t0)
			rots++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d ops in %v (%.0f op/s); avg rot %v, avg put %v\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		rotTot/time.Duration(max(rots, 1)), putTot/time.Duration(max(puts, 1)))
}
