// Command benchfig regenerates the tables and figures of the paper's
// evaluation (Section 5). Each figure prints the same series the paper
// plots; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	benchfig -fig 4            # Figure 4 (Contrarian variants vs Cure)
//	benchfig -fig 5            # Figure 5 (Contrarian vs CC-LO, 1 & 2 DC)
//	benchfig -fig 6            # Figure 6 (readers-check overhead vs clients)
//	benchfig -fig 7a|7b        # Figure 7 (write-ratio sweep, 1 or 2 DC)
//	benchfig -fig 8            # Figure 8 (skew sweep)
//	benchfig -fig 9            # Figure 9 (ROT size sweep)
//	benchfig -fig values       # §5.8 (value size sweep)
//	benchfig -fig table2       # Table 2 (systems characterization)
//	benchfig -fig wal          # durability: WAL off vs sync vs async
//	benchfig -fig transport    # batching engine: greedy vs adaptive flush
//	benchfig -fig store        # storage engine vs pre-refactor baseline (10M keys)
//	benchfig -fig overload     # admission control: ungated vs gated past saturation
//	benchfig -fig sessions     # session mux: per-client endpoints vs multiplexed sessions
//	benchfig -fig all          # everything except -fig store and -fig overload
//
// Scale knobs: -partitions, -keys, -clients, -duration, -warmup, -paper.
// With -json FILE, the measured series of the run are additionally written
// as JSON (CI archives the transport figure this way so future changes
// have a perf trajectory to compare against).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to reproduce: 4,5,6,7a,7b,8,9,values,compare,ablation,table2,wal,transport,store,overload,sessions,all")
		partitions = flag.Int("partitions", 8, "partitions per DC")
		keys       = flag.Int("keys", 20000, "keys per partition")
		clientsCSV = flag.String("clients", "4,16,64,192", "comma-separated clients/DC sweep")
		duration   = flag.Duration("duration", 4*time.Second, "measurement window per point")
		warmup     = flag.Duration("warmup", time.Second, "warmup per point")
		skew       = flag.Duration("skew", time.Millisecond, "max physical clock skew")
		paper      = flag.Bool("paper", false, "use paper-scale parameters (hours of runtime)")
		jsonOut    = flag.String("json", "", "also write the measured series as JSON to this file")
		storeKeys  = flag.Int("store-keys", 10_000_000, "-fig store: key count")
		storeSh    = flag.Int("store-shards", 0, "-fig store: engine shard count (0 = auto from GOMAXPROCS)")
		storeWk    = flag.Int("store-workers", 0, "-fig store: worker goroutines per phase (0 = auto)")
	)
	flag.Parse()

	o := bench.DefaultOpts(os.Stdout)
	if *paper {
		o = bench.PaperOpts(os.Stdout)
	} else {
		o.Partitions = *partitions
		o.KeysPerPartition = *keys
		o.Duration = *duration
		o.Warmup = *warmup
		o.MaxSkew = *skew
		var cs []int
		for _, f := range strings.Split(*clientsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatal("bad -clients: %v", err)
			}
			cs = append(cs, n)
		}
		o.Clients = cs
	}

	var collected []bench.Series
	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fatal("%s: %v", name, err)
		}
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("table2") {
		bench.PrintTable2(os.Stdout)
	}
	if want("4") {
		run("figure 4", func() error {
			series, err := bench.Figure4(o)
			collected = append(collected, series...)
			if err == nil {
				bench.PlotSeries(os.Stdout, "Figure 4 (plot)", series)
			}
			return err
		})
	}
	if want("5") {
		run("figure 5", func() error {
			series, err := bench.Figure5(o)
			collected = append(collected, series...)
			if err == nil {
				bench.PlotSeries(os.Stdout, "Figure 5 (plot)", series)
			}
			return err
		})
	}
	if want("6") {
		run("figure 6", func() error {
			series, err := bench.Figure6(o)
			collected = append(collected, series)
			return err
		})
	}
	if want("7a") {
		run("figure 7a", func() error {
			series, err := bench.Figure7(o, 1)
			collected = append(collected, series...)
			return err
		})
	}
	if want("7b") {
		run("figure 7b", func() error {
			series, err := bench.Figure7(o, 2)
			collected = append(collected, series...)
			return err
		})
	}
	if want("8") {
		run("figure 8", func() error {
			series, err := bench.Figure8(o)
			collected = append(collected, series...)
			return err
		})
	}
	if want("9") {
		run("figure 9", func() error {
			series, err := bench.Figure9(o)
			collected = append(collected, series...)
			return err
		})
	}
	if want("values") {
		run("value sizes", func() error {
			series, err := bench.ValueSizes(o)
			collected = append(collected, series...)
			return err
		})
	}
	if want("compare") {
		run("compare all", func() error {
			series, err := bench.CompareAll(o)
			collected = append(collected, series...)
			if err == nil {
				bench.PlotSeries(os.Stdout, "All protocols (plot)", series)
			}
			return err
		})
	}
	if want("ablation") {
		run("clock ablation", func() error { _, err := bench.AblationClockFreshness(o, 30); return err })
	}
	if want("wal") {
		run("wal sync modes", func() error {
			series, err := bench.FigureWAL(o, "")
			collected = append(collected, series...)
			return err
		})
	}
	// The store figure is opt-in only (not part of "all"): at its default
	// 10M-key scale it is a memory benchmark, not a protocol figure.
	if *fig == "store" {
		run("store engine", func() error {
			series, err := bench.FigureStore(*storeKeys, *storeSh, *storeWk, os.Stdout)
			collected = append(collected, series...)
			return err
		})
	}
	// The overload figure is opt-in only (not part of "all"): it
	// deliberately drives the cluster past saturation, so its points are
	// shed/goodput measurements, not comparable protocol figures.
	if *fig == "overload" {
		run("overload admission", func() error {
			series, err := bench.FigureOverload(o, 2)
			collected = append(collected, series...)
			return err
		})
	}
	if want("transport") {
		run("transport flush policies", func() error {
			series, err := bench.FigureTransport(o, 1)
			collected = append(collected, series...)
			return err
		})
	}
	if want("sessions") {
		run("session multiplexing", func() error {
			series, err := bench.FigureSessions(o, 1)
			collected = append(collected, series...)
			return err
		})
	}
	if *jsonOut != "" {
		if len(collected) == 0 {
			// table2/ablation produce no Series; after an otherwise
			// successful run, warn and write a valid empty archive rather
			// than failing (or emitting literal "null").
			fmt.Fprintf(os.Stderr, "benchfig: -fig %s produced no measured series; writing an empty JSON array\n", *fig)
			collected = []bench.Series{}
		}
		buf, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			fatal("marshal -json: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal("write -json: %v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
