// Command benchfig regenerates the tables and figures of the paper's
// evaluation (Section 5). Each figure prints the same series the paper
// plots; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	benchfig -fig 4            # Figure 4 (Contrarian variants vs Cure)
//	benchfig -fig 5            # Figure 5 (Contrarian vs CC-LO, 1 & 2 DC)
//	benchfig -fig 6            # Figure 6 (readers-check overhead vs clients)
//	benchfig -fig 7a|7b        # Figure 7 (write-ratio sweep, 1 or 2 DC)
//	benchfig -fig 8            # Figure 8 (skew sweep)
//	benchfig -fig 9            # Figure 9 (ROT size sweep)
//	benchfig -fig values       # §5.8 (value size sweep)
//	benchfig -fig table2       # Table 2 (systems characterization)
//	benchfig -fig wal          # durability: WAL off vs sync vs async
//	benchfig -fig all          # everything
//
// Scale knobs: -partitions, -keys, -clients, -duration, -warmup, -paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to reproduce: 4,5,6,7a,7b,8,9,values,compare,ablation,table2,wal,all")
		partitions = flag.Int("partitions", 8, "partitions per DC")
		keys       = flag.Int("keys", 20000, "keys per partition")
		clientsCSV = flag.String("clients", "4,16,64,192", "comma-separated clients/DC sweep")
		duration   = flag.Duration("duration", 4*time.Second, "measurement window per point")
		warmup     = flag.Duration("warmup", time.Second, "warmup per point")
		skew       = flag.Duration("skew", time.Millisecond, "max physical clock skew")
		paper      = flag.Bool("paper", false, "use paper-scale parameters (hours of runtime)")
	)
	flag.Parse()

	o := bench.DefaultOpts(os.Stdout)
	if *paper {
		o = bench.PaperOpts(os.Stdout)
	} else {
		o.Partitions = *partitions
		o.KeysPerPartition = *keys
		o.Duration = *duration
		o.Warmup = *warmup
		o.MaxSkew = *skew
		var cs []int
		for _, f := range strings.Split(*clientsCSV, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fatal("bad -clients: %v", err)
			}
			cs = append(cs, n)
		}
		o.Clients = cs
	}

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fatal("%s: %v", name, err)
		}
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("table2") {
		bench.PrintTable2(os.Stdout)
	}
	if want("4") {
		run("figure 4", func() error {
			series, err := bench.Figure4(o)
			if err == nil {
				bench.PlotSeries(os.Stdout, "Figure 4 (plot)", series)
			}
			return err
		})
	}
	if want("5") {
		run("figure 5", func() error {
			series, err := bench.Figure5(o)
			if err == nil {
				bench.PlotSeries(os.Stdout, "Figure 5 (plot)", series)
			}
			return err
		})
	}
	if want("6") {
		run("figure 6", func() error { _, err := bench.Figure6(o); return err })
	}
	if want("7a") {
		run("figure 7a", func() error { _, err := bench.Figure7(o, 1); return err })
	}
	if want("7b") {
		run("figure 7b", func() error { _, err := bench.Figure7(o, 2); return err })
	}
	if want("8") {
		run("figure 8", func() error { _, err := bench.Figure8(o); return err })
	}
	if want("9") {
		run("figure 9", func() error { _, err := bench.Figure9(o); return err })
	}
	if want("values") {
		run("value sizes", func() error { _, err := bench.ValueSizes(o); return err })
	}
	if want("compare") {
		run("compare all", func() error {
			series, err := bench.CompareAll(o)
			if err == nil {
				bench.PlotSeries(os.Stdout, "All protocols (plot)", series)
			}
			return err
		})
	}
	if want("ablation") {
		run("clock ablation", func() error { _, err := bench.AblationClockFreshness(o, 30); return err })
	}
	if want("wal") {
		run("wal sync modes", func() error { _, err := bench.FigureWAL(o, ""); return err })
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
